package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"pbbf/internal/experiments"
	"pbbf/internal/scenario"
	"pbbf/internal/trace"
)

// traceHeader is the first NDJSON line of a trace stream: everything
// needed to re-run the exact point that produced the events below it.
type traceHeader struct {
	Type       string             `json:"type"`
	Scenario   string             `json:"scenario"`
	Artifact   string             `json:"artifact"`
	Scale      string             `json:"scale"`
	Seed       uint64             `json:"seed"`
	Point      int                `json:"point"`
	Series     string             `json:"series"`
	X          float64            `json:"x"`
	Params     map[string]float64 `json:"params"`
	DurationNS int64              `json:"duration_ns"`
	Events     string             `json:"events"`
}

// traceResult is the final NDJSON line: the point's aggregate result plus
// the event accounting (total recorded vs emitted after -events filtering).
type traceResult struct {
	Type string `json:"type"`
	scenario.Result
	Runs          int `json:"runs"`
	EventsTotal   int `json:"events_total"`
	EventsEmitted int `json:"events_emitted"`
}

// runTrace implements the trace subcommand: run one parameter point of one
// scenario with the event recorder attached and emit the deterministic
// NDJSON stream — header, per-run events, per-run per-node summaries, and
// the aggregate result. The stream is byte-identical across invocations
// (and worker counts: a single point always computes serially), so CI
// diffs it against committed goldens.
func runTrace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pbbf trace", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		scenarioID = fs.String("scenario", "", "scenario id to trace (e.g. fig13, extcompare)")
		pointIdx   = fs.Int("point", 0, "zero-based point index within the scenario's parameter space")
		scaleName  = fs.String("scale", "quick", "scenario scale: quick, paper, bench, or large")
		seed       = fs.Uint64("seed", 1, "root random seed")
		protoName  = fs.String("protocol", "", "broadcast protocol for network scenarios: pbbf (default), sleepsched, or ola")
		runs       = fs.Int("runs", 1, "number of runs to capture events for (0 = all runs of the point)")
		events     = fs.String("events", "all", "comma-separated event groups to emit: packet, radio, energy, or all")
		listPoints = fs.Bool("list-points", false, "list the scenario's point indices and exit")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "accepted for CLI parity; a single point is always computed by one worker")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("trace: unexpected arguments %v", fs.Args())
	}
	if *scenarioID == "" {
		return fmt.Errorf("trace: missing -scenario (try pbbf -list)")
	}
	if *runs < 0 {
		return fmt.Errorf("trace: runs must be non-negative, got %d", *runs)
	}
	if *workers <= 0 {
		return fmt.Errorf("workers must be positive, got %d", *workers)
	}
	group, err := parseEventGroups(*events)
	if err != nil {
		return err
	}
	scale, err := scenario.ByName(*scaleName)
	if err != nil {
		return err
	}
	scale.Seed = *seed
	if scale.Protocol, err = resolveProtocol(*protoName); err != nil {
		return err
	}
	sc, err := experiments.Registry().ByID(*scenarioID)
	if err != nil {
		return err
	}
	if !sc.PointBased() {
		return fmt.Errorf("trace: scenario %s is a static table and has no simulation to trace", sc.ID)
	}
	pts, err := sc.Points(scale)
	if err != nil {
		return err
	}
	if *listPoints {
		return printPoints(out, sc.ID, pts)
	}
	if *pointIdx < 0 || *pointIdx >= len(pts) {
		return fmt.Errorf("trace: point %d out of range (scenario %s has %d points; see -list-points)",
			*pointIdx, sc.ID, len(pts))
	}
	pt := pts[*pointIdx]

	collector := &trace.Collector{MaxRuns: *runs}
	ctx := trace.WithProvider(context.Background(), collector)
	res, err := sc.ComputePoint(ctx, scale, pt)
	if err != nil {
		return err
	}
	slabs := collector.Runs()
	total := 0
	for _, slab := range slabs {
		total += len(slab.Events)
	}
	if total == 0 {
		return fmt.Errorf("trace: scenario %s recorded no events (only network-simulator scenarios emit a trace)", sc.ID)
	}

	w := bufio.NewWriterSize(out, 1<<16)
	enc := json.NewEncoder(w)
	if err := enc.Encode(traceHeader{
		Type:       "header",
		Scenario:   sc.ID,
		Artifact:   sc.Artifact,
		Scale:      *scaleName,
		Seed:       *seed,
		Point:      *pointIdx,
		Series:     pt.Series,
		X:          pt.X,
		Params:     pt.Params,
		DurationNS: scale.NetDuration.Nanoseconds(),
		Events:     *events,
	}); err != nil {
		return err
	}
	emitted := 0
	buf := make([]byte, 0, 256)
	for _, slab := range slabs {
		for _, ev := range slab.Events {
			if ev.Kind.Group()&group == 0 {
				continue
			}
			emitted++
			buf = trace.AppendNDJSON(buf[:0], slab.Run, ev)
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		for _, s := range trace.Summarize(slab.Events, scale.NetDuration) {
			buf = trace.AppendSummaryNDJSON(buf[:0], slab.Run, s)
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	if err := enc.Encode(traceResult{
		Type:          "result",
		Result:        res,
		Runs:          len(slabs),
		EventsTotal:   total,
		EventsEmitted: emitted,
	}); err != nil {
		return err
	}
	return w.Flush()
}

// parseEventGroups resolves the -events flag into a group mask.
func parseEventGroups(s string) (trace.Group, error) {
	var g trace.Group
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "all":
			g |= trace.GroupAll
		case "packet":
			g |= trace.GroupPacket
		case "radio":
			g |= trace.GroupRadio
		case "energy":
			g |= trace.GroupEnergy
		case "":
		default:
			return 0, fmt.Errorf("trace: unknown event group %q (want packet, radio, energy, or all)", strings.TrimSpace(part))
		}
	}
	if g == 0 {
		return 0, fmt.Errorf("trace: -events selected no groups")
	}
	return g, nil
}

// printPoints lists a scenario's parameter points with the indices the
// -point flag addresses.
func printPoints(out io.Writer, id string, pts []scenario.Point) error {
	for i, pt := range pts {
		keys := make([]string, 0, len(pt.Params))
		for k := range pt.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%v", k, pt.Params[k])
		}
		if _, err := fmt.Fprintf(out, "%s[%d] series=%q x=%v%s\n", id, i, pt.Series, pt.X, sb.String()); err != nil {
			return err
		}
	}
	return nil
}
