package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// goldenLine is the slice of one NDJSON point line this test cares about:
// enough structure to attribute a mismatch and to fold the per-point
// energy/delivery metrics into per-scenario invariants.
type goldenLine struct {
	Scenario string `json:"scenario"`
	Point    *struct {
		Series string  `json:"series"`
		X      float64 `json:"x"`
		Result struct {
			EnergyJ  float64 `json:"energy_j"`
			Delivery float64 `json:"delivery"`
		} `json:"result"`
	} `json:"point"`
}

// TestGoldenQuickNDJSON pins the full registry's quick-scale NDJSON stream
// to the committed pre-refactor golden, byte for byte. The golden was
// recorded before the allocation-free kernel landed, so this is the proof
// that the pooled node arrays, reused adjacency buffers, and recycled
// duplicate-filter bitsets changed how the simulation allocates without
// changing anything it computes — every RNG draw, every collision, every
// joule. On top of the byte comparison it folds the stream into per-scenario
// energy and delivery totals and checks those against the golden's totals,
// so a failure reports which physics drifted, not just which byte.
func TestGoldenQuickNDJSON(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_quick.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "all", "-scale", "quick", "-format", "ndjson", "-workers", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	// The aggregate invariants first: when these fail the byte diff below
	// is a symptom, and the per-scenario totals say where to look.
	wantSums := foldTotals(t, want)
	gotSums := foldTotals(t, got)
	for id, w := range wantSums {
		g, ok := gotSums[id]
		if !ok {
			t.Errorf("scenario %s missing from output", id)
			continue
		}
		if g != w {
			t.Errorf("scenario %s invariants drifted: energy %v -> %v J, delivery %v -> %v, points %d -> %d",
				id, w.energy, g.energy, w.delivery, g.delivery, w.points, g.points)
		}
	}
	for id := range gotSums {
		if _, ok := wantSums[id]; !ok {
			t.Errorf("scenario %s not in golden", id)
		}
	}

	if !bytes.Equal(got, want) {
		t.Fatalf("quick-scale NDJSON diverged from the pre-refactor golden: %s", firstDiff(got, want))
	}
}

// totals is one scenario's folded metrics: exact float sums are meaningful
// because both streams fold the same points in the same enumeration order.
type totals struct {
	points   int
	energy   float64
	delivery float64
}

func foldTotals(t *testing.T, stream []byte) map[string]totals {
	t.Helper()
	sums := make(map[string]totals)
	sc := bufio.NewScanner(bytes.NewReader(stream))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line goldenLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Point == nil {
			continue // table scenarios carry no per-point metrics
		}
		s := sums[line.Scenario]
		s.points++
		s.energy += line.Point.Result.EnergyJ
		s.delivery += line.Point.Result.Delivery
		sums[line.Scenario] = s
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sums
}

// firstDiff locates the first differing line for the failure message.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("first difference at line %d:\ngot  %s\nwant %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(gl), len(wl))
}
