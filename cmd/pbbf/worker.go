package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"pbbf/internal/dist"
	"pbbf/internal/experiments"
)

// runWorker implements the worker subcommand: join a distributed sweep as
// a compute worker. The worker registers with the coordinator (`pbbf
// sweep -distribute`), leases batches of point specs, computes them with
// a local pool, reports results, and exits when the coordinator declares
// the sweep done. Killing a worker at any moment is safe: its unreported
// lease expires on the coordinator and the points are handed to another
// worker.
func runWorker(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pbbf worker", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (e.g. http://host:8099)")
		name        = fs.String("name", "", "worker name shown in coordinator logs (default: host:pid)")
		workers     = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel point computations")
		batch       = fs.Int("batch", 0, "points leased per request (0 = 2x workers)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("worker: unexpected arguments %v", fs.Args())
	}
	if *coordinator == "" {
		return fmt.Errorf("worker: missing -coordinator URL")
	}
	if *workers <= 0 {
		return fmt.Errorf("workers must be positive, got %d", *workers)
	}
	if *batch < 0 {
		return fmt.Errorf("batch must be non-negative, got %d", *batch)
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	return dist.RunWorker(ctx, dist.WorkerConfig{
		CoordinatorURL: *coordinator,
		Registry:       experiments.Registry(),
		Name:           *name,
		Parallelism:    *workers,
		Batch:          *batch,
		Logw:           errOut,
	})
}
