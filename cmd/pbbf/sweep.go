package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"pbbf/internal/dist"
	"pbbf/internal/experiments"
	"pbbf/internal/scenario"
	"pbbf/internal/server"
	"pbbf/internal/sweep"
)

// runSweep implements the sweep subcommand: the same scenario selection
// and output formats as the default run mode, plus periodic structured
// progress telemetry and two long-run modes that compose freely:
//
//   - -checkpoint FILE makes the run resumable: every completed point
//     result is persisted (atomically, after each point) and skipped on
//     restart, and a completed resumed run compacts the journal back to
//     its minimal canonical form.
//   - -distribute ADDR turns the process into a coordinator: instead of
//     computing points locally it serves them to `pbbf worker` processes
//     over HTTP (lease/result/heartbeat; see docs/DISTRIBUTED.md), merges
//     their results, and emits output byte-identical to a local run.
//
// Experiment output goes to out; progress and the resume summary go to
// errOut so `-format json > file` stays parseable.
func runSweep(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pbbf sweep", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		experiment    = fs.String("experiment", "all", "scenario id (e.g. fig8) or \"all\"")
		scaleName     = fs.String("scale", "quick", "scenario scale: quick, paper, bench, or large")
		format        = fs.String("format", "table", "output format: table, csv, json, or ndjson")
		seed          = fs.Uint64("seed", 1, "root random seed")
		protoName     = fs.String("protocol", "", "broadcast protocol for network scenarios: pbbf (default), sleepsched, or ola")
		energyJ       = fs.Float64("energy", 0, "mean initial battery capacity in joules for network scenarios (0 = infinite battery)")
		harvestW      = fs.Float64("harvest", 0, "constant per-node energy-harvest rate in watts (requires -energy)")
		workers       = fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the point sweep (local mode; -distribute uses -outstanding)")
		checkpoint    = fs.String("checkpoint", "", "checkpoint file for resumable runs (empty = no persistence)")
		progress      = fs.Bool("progress", true, "periodic JSON progress summaries (done/total, rate, ETA) on stderr")
		progressEvery = fs.Int("progress-every", 0, "print the classic per-point progress line every N completed points instead of the periodic summary (0 = summary)")
		distribute    = fs.String("distribute", "", "listen address for a distributed sweep (e.g. :8099); empty = compute locally")
		pprofOn       = fs.Bool("pprof", false, "register unauthenticated /debug/pprof handlers on the coordinator (distributed mode; bind loopback)")
		leaseTTL      = fs.Duration("lease-ttl", dist.DefaultLeaseTTL, "how long workers hold leased points before requeue (distributed mode)")
		outstanding   = fs.Int("outstanding", 256, "max points leased out concurrently (distributed mode)")
		verbose       = fs.Bool("verbose", false, "structured access log for coordinator requests on stderr (distributed mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("sweep: unexpected arguments %v", fs.Args())
	}
	if *distribute != "" {
		// The coordinator computes nothing locally, so a hand-set local
		// pool size would silently do nothing; say so instead.
		explicitWorkers := false
		fs.Visit(func(f *flag.Flag) { explicitWorkers = explicitWorkers || f.Name == "workers" })
		if explicitWorkers {
			fmt.Fprintln(errOut, "sweep: -workers has no effect with -distribute; use -outstanding to bound in-flight leased points")
		}
	}
	scale, err := scenario.ByName(*scaleName)
	if err != nil {
		return err
	}
	scale.Seed = *seed
	if scale.Protocol, err = resolveProtocol(*protoName); err != nil {
		return err
	}
	scale.EnergyJ = *energyJ
	scale.HarvestW = *harvestW
	if err := scale.Validate(); err != nil {
		return err
	}
	if err := validFormat(*format); err != nil {
		return err
	}
	if *workers <= 0 {
		return fmt.Errorf("workers must be positive, got %d", *workers)
	}
	if *outstanding <= 0 {
		return fmt.Errorf("outstanding must be positive, got %d", *outstanding)
	}
	if *leaseTTL <= 0 {
		return fmt.Errorf("lease-ttl must be positive, got %v", *leaseTTL)
	}
	if *progressEvery < 0 {
		return fmt.Errorf("progress-every must be non-negative, got %d", *progressEvery)
	}
	if *pprofOn && *distribute == "" {
		return fmt.Errorf("sweep: -pprof requires -distribute (there is no HTTP surface in local mode)")
	}

	reg := experiments.Registry()
	var selected []scenario.Scenario
	if *experiment == "all" {
		selected = reg.All()
	} else {
		sc, err := reg.ByID(*experiment)
		if err != nil {
			return err
		}
		selected = []scenario.Scenario{sc}
	}

	// Distributed mode: stand up the coordinator endpoints and replace
	// local point computation with queue dispatch. The scenario engine —
	// enumeration, assembly, output — is unchanged, which is what makes
	// the distributed output byte-identical to a local run.
	var coord *dist.Coordinator
	engineWorkers := *workers
	if *distribute != "" {
		coord = dist.NewCoordinator(dist.Config{LeaseTTL: *leaseTTL})
		var accessLog io.Writer
		if *verbose {
			accessLog = errOut
		}
		srv, err := server.New(server.Config{
			Registry:    reg,
			Coordinator: coord,
			AccessLog:   accessLog,
			EnablePprof: *pprofOn,
		})
		if err != nil {
			return err
		}
		l, err := net.Listen("tcp", *distribute)
		if err != nil {
			return err
		}
		fmt.Fprintf(errOut, "sweep: coordinator listening on http://%s\n", l.Addr())
		serveCtx, stopServe := context.WithCancel(context.Background())
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.ServeListener(serveCtx, l, nil) }()
		defer func() {
			// Let connected workers observe the sweep's end (their next
			// lease poll answers Done) before the listener goes away.
			coord.Close()
			coord.Quiesce(ctx, 2*(*leaseTTL))
			stopServe()
			<-serveErr
		}()
		// In distributed mode the engine pool only tracks in-flight
		// leases (each goroutine blocks in coord.Do, computing nothing),
		// so it is sized by -outstanding, not local cores.
		engineWorkers = *outstanding
	}

	// dispatch computes one point: remotely through the coordinator's
	// queue when distributing, locally otherwise.
	dispatch := func(sc scenario.Scenario, pt scenario.Point, compute func() (scenario.Result, error)) (scenario.Result, error) {
		if coord != nil {
			return coord.Do(ctx, scenario.NewPointSpec(sc, scale, pt))
		}
		return compute()
	}

	// Load or create the checkpoint. Identity (experiment, scale, seed,
	// protocol, energy axis) must match: resuming a different workload from
	// recorded results would silently mix runs.
	var cp *scenario.Checkpoint
	if *checkpoint != "" {
		id := scenario.Identity{
			Experiment: *experiment, Scale: *scaleName, Seed: *seed,
			Protocol: scale.Protocol, EnergyJ: scale.EnergyJ, HarvestW: scale.HarvestW,
		}
		cp, err = scenario.LoadCheckpoint(*checkpoint)
		if err != nil {
			return err
		}
		if cp == nil {
			cp = scenario.NewCheckpointFor(id)
		} else if err := cp.MatchesIdentity(id); err != nil {
			return err
		}
		if len(cp.Results) > 0 {
			fmt.Fprintf(errOut, "sweep: checkpoint %s holds %d completed point(s)\n", *checkpoint, len(cp.Results))
		}
	}

	var (
		mu                sync.Mutex
		resumed, computed int
	)
	opts := scenario.RunOptions{Workers: engineWorkers}
	var cpw *scenario.CheckpointWriter
	switch {
	case cp != nil:
		// Completed points append to the journal as they finish: O(1)
		// disk work per point under the writer's own lock, so workers
		// never serialize on rewriting prior results.
		w, err := cp.OpenWriter(*checkpoint)
		if err != nil {
			return err
		}
		cpw = w
		defer w.Close()
		opts.Intercept = func(sc scenario.Scenario, pt scenario.Point, compute func() (scenario.Result, error)) (scenario.Result, bool, error) {
			key := scenario.PointKey(sc.ID, scale, pt)
			mu.Lock()
			res, ok := cp.Results[key]
			if ok {
				resumed++
			}
			mu.Unlock()
			if ok {
				return res, true, nil
			}
			res, err := dispatch(sc, pt, compute)
			if err != nil {
				return res, false, err
			}
			mu.Lock()
			cp.Results[key] = res
			computed++
			mu.Unlock()
			if err := w.Append(key, res); err != nil {
				return res, false, fmt.Errorf("checkpoint %s: %w", *checkpoint, err)
			}
			return res, false, nil
		}
	case coord != nil:
		opts.Intercept = func(sc scenario.Scenario, pt scenario.Point, compute func() (scenario.Result, error)) (scenario.Result, bool, error) {
			res, err := dispatch(sc, pt, compute)
			return res, false, err
		}
	}
	// Progress: the default is a periodic structured summary (one JSON line
	// with done/total, rate, and ETA every few seconds — plus the per-worker
	// throughput of a distributed sweep), not a line per point; a paper-scale
	// run completes thousands of points and the per-point stream buries the
	// one number an operator wants. -progress-every N restores the classic
	// per-point lines, thinned to every Nth completion.
	var reporter *sweep.Reporter
	switch {
	case *progress && *progressEvery > 0:
		every := *progressEvery
		opts.OnPoint = func(ev scenario.PointEvent) {
			if ev.Done%every != 0 && ev.Done != ev.Total {
				return
			}
			if ev.Point == nil {
				fmt.Fprintf(errOut, "[%d/%d] %s table\n", ev.Done, ev.Total, ev.ScenarioID)
				return
			}
			suffix := ""
			if ev.Cached {
				suffix = " (checkpointed)"
			}
			fmt.Fprintf(errOut, "[%d/%d] %s %s%s\n", ev.Done, ev.Total, ev.ScenarioID, ev.Point.Label(), suffix)
		}
	case *progress:
		reporter = sweep.NewReporter(errOut, 5*time.Second)
		if coord != nil {
			reporter.SetWorkers(func() []sweep.WorkerProgress {
				snap := coord.Snapshot()
				ws := make([]sweep.WorkerProgress, 0, len(snap.Workers))
				for _, w := range snap.Workers {
					ws = append(ws, sweep.WorkerProgress{
						ID:          w.ID,
						Name:        w.Name,
						Alive:       w.Alive,
						Quarantined: w.Quarantined,
						Leased:      w.Leased,
						Completed:   w.Completed,
						Failed:      w.Failed,
					})
				}
				return ws
			})
		}
		opts.OnPoint = func(ev scenario.PointEvent) {
			reporter.Observe(ev.Done, ev.Total, ev.Cached)
		}
	}

	outputs, err := scenario.RunAllCtx(ctx, selected, scale, opts)
	if reporter != nil {
		reporter.Finish()
	}
	if err != nil {
		if cp != nil {
			fmt.Fprintf(errOut, "sweep: interrupted with %d point(s) checkpointed in %s; rerun to resume\n",
				len(cp.Results), *checkpoint)
		}
		return err
	}
	if cp != nil {
		fmt.Fprintf(errOut, "sweep: done — resumed %d point(s) from checkpoint, computed %d\n", resumed, computed)
		// A resumed run has an accumulated journal (append order of the
		// interrupted runs, possibly a truncated torn tail). Compact it
		// to the minimal canonical form now that the run is whole. The
		// writer closes first so the rewrite never races a final append.
		// Compaction is housekeeping: if it fails (disk full), the
		// results are already safe in the append journal, so warn and
		// emit the output rather than discarding a completed run.
		if resumed > 0 {
			cpw.Close()
			if err := cp.WriteFile(*checkpoint); err != nil {
				fmt.Fprintf(errOut, "sweep: WARNING: could not compact checkpoint %s: %v\n", *checkpoint, err)
			} else {
				fmt.Fprintf(errOut, "sweep: compacted checkpoint %s to %d entries\n", *checkpoint, len(cp.Results))
			}
		}
	}
	return emit(out, *format, outputs)
}
