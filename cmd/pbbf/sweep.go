package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"runtime"
	"sync"

	"pbbf/internal/experiments"
	"pbbf/internal/scenario"
)

// runSweep implements the sweep subcommand: the same scenario selection
// and output formats as the default run mode, plus per-point progress
// lines and — with -checkpoint — a resumable run that persists every
// completed point result to disk (atomically, after each point) and skips
// already-recorded points on restart. Killing a checkpointed sweep at any
// moment loses at most the points still in flight.
//
// Experiment output goes to out; progress and the resume summary go to
// errOut so `-format json > file` stays parseable.
func runSweep(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pbbf sweep", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		experiment = fs.String("experiment", "all", "scenario id (e.g. fig8) or \"all\"")
		scaleName  = fs.String("scale", "quick", "scenario scale: quick, paper, or bench")
		format     = fs.String("format", "table", "output format: table, csv, or json")
		seed       = fs.Uint64("seed", 1, "root random seed")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the point sweep")
		checkpoint = fs.String("checkpoint", "", "checkpoint file for resumable runs (empty = no persistence)")
		progress   = fs.Bool("progress", true, "print one line per completed point to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("sweep: unexpected arguments %v", fs.Args())
	}
	scale, err := scenario.ByName(*scaleName)
	if err != nil {
		return err
	}
	scale.Seed = *seed
	switch *format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want table, csv, or json)", *format)
	}
	if *workers <= 0 {
		return fmt.Errorf("workers must be positive, got %d", *workers)
	}

	reg := experiments.Registry()
	var selected []scenario.Scenario
	if *experiment == "all" {
		selected = reg.All()
	} else {
		sc, err := reg.ByID(*experiment)
		if err != nil {
			return err
		}
		selected = []scenario.Scenario{sc}
	}

	// Load or create the checkpoint. Identity (experiment, scale, seed)
	// must match: resuming a different workload from recorded results
	// would silently mix runs.
	var cp *scenario.Checkpoint
	if *checkpoint != "" {
		cp, err = scenario.LoadCheckpoint(*checkpoint)
		if err != nil {
			return err
		}
		if cp == nil {
			cp = scenario.NewCheckpoint(*experiment, *scaleName, *seed)
		} else if err := cp.Matches(*experiment, *scaleName, *seed); err != nil {
			return err
		}
		if len(cp.Results) > 0 {
			fmt.Fprintf(errOut, "sweep: checkpoint %s holds %d completed point(s)\n", *checkpoint, len(cp.Results))
		}
	}

	var (
		mu                sync.Mutex
		resumed, computed int
	)
	opts := scenario.RunOptions{Workers: *workers}
	if cp != nil {
		// Completed points append to the journal as they finish: O(1)
		// disk work per point under the writer's own lock, so workers
		// never serialize on rewriting prior results.
		w, err := cp.OpenWriter(*checkpoint)
		if err != nil {
			return err
		}
		defer w.Close()
		opts.Intercept = func(sc scenario.Scenario, pt scenario.Point, compute func() (scenario.Result, error)) (scenario.Result, bool, error) {
			key := scenario.PointKey(sc.ID, scale, pt)
			mu.Lock()
			res, ok := cp.Results[key]
			if ok {
				resumed++
			}
			mu.Unlock()
			if ok {
				return res, true, nil
			}
			res, err := compute()
			if err != nil {
				return res, false, err
			}
			mu.Lock()
			cp.Results[key] = res
			computed++
			mu.Unlock()
			if err := w.Append(key, res); err != nil {
				return res, false, fmt.Errorf("checkpoint %s: %w", *checkpoint, err)
			}
			return res, false, nil
		}
	}
	if *progress {
		opts.OnPoint = func(ev scenario.PointEvent) {
			if ev.Point == nil {
				fmt.Fprintf(errOut, "[%d/%d] %s table\n", ev.Done, ev.Total, ev.ScenarioID)
				return
			}
			suffix := ""
			if ev.Cached {
				suffix = " (checkpointed)"
			}
			fmt.Fprintf(errOut, "[%d/%d] %s %s%s\n", ev.Done, ev.Total, ev.ScenarioID, ev.Point.Label(), suffix)
		}
	}

	outputs, err := scenario.RunAllCtx(ctx, selected, scale, opts)
	if err != nil {
		if cp != nil {
			fmt.Fprintf(errOut, "sweep: interrupted with %d point(s) checkpointed in %s; rerun to resume\n",
				len(cp.Results), *checkpoint)
		}
		return err
	}
	if cp != nil {
		fmt.Fprintf(errOut, "sweep: done — resumed %d point(s) from checkpoint, computed %d\n", resumed, computed)
	}
	return emit(out, *format, outputs)
}
