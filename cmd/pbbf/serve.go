package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"runtime"

	"pbbf/internal/cache"
	"pbbf/internal/experiments"
	"pbbf/internal/scenario"
	"pbbf/internal/server"
)

// runServe implements the serve subcommand: the scenario registry behind
// the HTTP API of internal/server, with a sharded result cache sized by
// flags. It blocks until ctx is cancelled (SIGINT/SIGTERM in main) and
// then shuts down gracefully. Operational logs — the bound address, the
// shutdown notice — go to errOut, keeping stdout clean for redirection.
func runServe(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pbbf serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port)")
		shards     = fs.Int("cache-shards", server.DefaultCacheShards, "result-cache shard count")
		capacity   = fs.Int("cache-entries", server.DefaultCacheCapacity, "result-cache total entry bound (LRU per shard)")
		maxWorkers = fs.Int("max-workers", runtime.GOMAXPROCS(0), "per-request sweep worker cap")
		verbose    = fs.Bool("verbose", false, "structured JSON access log on stderr, one line per request")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	if *maxWorkers <= 0 {
		return fmt.Errorf("max-workers must be positive, got %d", *maxWorkers)
	}
	c, err := cache.New[scenario.Result](*shards, *capacity)
	if err != nil {
		return err
	}
	var accessLog io.Writer
	if *verbose {
		accessLog = errOut
	}
	srv, err := server.New(server.Config{
		Registry:   experiments.Registry(),
		Cache:      c,
		MaxWorkers: *maxWorkers,
		AccessLog:  accessLog,
	})
	if err != nil {
		return err
	}
	return srv.ListenAndServe(ctx, *addr, errOut)
}
