package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"runtime"

	"pbbf/internal/experiments"
	"pbbf/internal/server"
)

// runServe implements the serve subcommand: the scenario registry behind
// the HTTP API of internal/server — a sharded in-memory result cache,
// optionally tiered over a persistent on-disk result store (-store), with
// per-client rate limiting and bounded-queue backpressure sized by flags.
// It blocks until ctx is cancelled (SIGINT/SIGTERM in main) and then
// shuts down gracefully. Operational logs — the bound address, the
// shutdown notice — go to errOut, keeping stdout clean for redirection.
func runServe(ctx context.Context, args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pbbf serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", ":8080", "listen address (host:port)")
		shards     = fs.Int("cache-shards", server.DefaultCacheShards, "result-cache shard count")
		capacity   = fs.Int("cache-entries", server.DefaultCacheCapacity, "result-cache total entry bound (LRU per shard)")
		storeDir   = fs.String("store", "", "persistent result-store directory (empty = memory only)")
		rateLimit  = fs.Float64("rate-limit", 0, "per-client sustained /v1/run requests per second (0 = unlimited)")
		rateBurst  = fs.Int("rate-burst", 0, "per-client burst size (0 = max(1, rate-limit))")
		maxRuns    = fs.Int("max-runs", 0, "concurrent /v1/run bound (0 = 4x GOMAXPROCS, negative = unbounded)")
		runQueue   = fs.Int("run-queue", server.DefaultRunQueueDepth, "runs that may wait for a slot before arrivals are shed with 429")
		retryAfter = fs.Duration("retry-after", server.DefaultRetryAfter, "advisory Retry-After on backpressure 429s")
		maxWorkers = fs.Int("max-workers", runtime.GOMAXPROCS(0), "per-request sweep worker cap")
		verbose    = fs.Bool("verbose", false, "structured JSON access log on stderr, one line per request")
		pprofOn    = fs.Bool("pprof", false, "register unauthenticated /debug/pprof handlers (debug only; bind loopback)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	if *maxWorkers <= 0 {
		return fmt.Errorf("max-workers must be positive, got %d", *maxWorkers)
	}
	// The Options structs treat zero as "use the default"; the flags are
	// explicit, so zero or negative sizing is a user error here.
	if *shards <= 0 {
		return fmt.Errorf("cache-shards must be positive, got %d", *shards)
	}
	if *capacity <= 0 {
		return fmt.Errorf("cache-entries must be positive, got %d", *capacity)
	}
	var accessLog io.Writer
	if *verbose {
		accessLog = errOut
	}
	srv, err := server.New(server.Options{
		Registry: experiments.Registry(),
		Mem:      server.CacheOptions{Shards: *shards, Entries: *capacity},
		Disk:     server.StoreOptions{Dir: *storeDir},
		Limits: server.LimitOptions{
			RatePerSec:        *rateLimit,
			Burst:             *rateBurst,
			MaxConcurrentRuns: *maxRuns,
			RunQueueDepth:     *runQueue,
			RetryAfter:        *retryAfter,
		},
		MaxWorkers:  *maxWorkers,
		AccessLog:   accessLog,
		EnablePprof: *pprofOn,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if *storeDir != "" {
		fmt.Fprintf(errOut, "pbbf serve: persistent result store at %s\n", *storeDir)
	}
	return srv.ListenAndServe(ctx, *addr, errOut)
}
