// Command pbbf regenerates the tables and figures of "Exploring the
// Energy-Latency Trade-off for Broadcasts in Energy-Saving Sensor
// Networks" (Miller, Sengul, Gupta; ICDCS 2005) — plus this repository's
// extension scenarios — from the unified scenario registry.
//
// Usage:
//
//	pbbf -list
//	pbbf -experiment fig8
//	pbbf -experiment all -scale paper -format csv
//	pbbf -experiment all -scale quick -format json
//	pbbf bench -out BENCH.json
//	pbbf bench -out BENCH_new.json -baseline BENCH.json -threshold 0.30
//	pbbf trace -scenario extcompare -point 1 -runs 1 -events packet,radio
//	pbbf sweep -experiment all -scale paper -checkpoint paper.ckpt.json
//	pbbf sweep -experiment all -scale paper -distribute :8099 -format json
//	pbbf worker -coordinator http://coordinator-host:8099
//	pbbf serve -addr :8080 -store results.store -rate-limit 50
//	pbbf loadtest -target http://127.0.0.1:8080 -out LOADTEST.json
//
// Scales: "quick" (CI-sized, seconds), "paper" (the paper's dimensions,
// minutes), and "bench" (the frozen benchmark dimensions behind
// BENCH.json). With -experiment all, every parameter point of every
// scenario fans out across one bounded worker pool; output order is
// deterministic regardless of scheduling. Formats: an aligned text table,
// CSV, JSON (scenario metadata, the assembled table, and per-point
// energy/latency/delivery results), or NDJSON (one line per parameter
// point in enumeration order — the byte-diffable stream the nightly CI
// sweep archives).
//
// The bench subcommand runs every registered scenario sequentially at the
// bench scale, writes the machine-readable report (wall time, ns/point,
// allocations, events fired per scenario), and — when -baseline is given —
// exits non-zero if any scenario regressed more than -threshold against
// it. See docs/BENCHMARKS.md.
//
// The trace subcommand runs one parameter point with the event-level
// recorder attached and streams the result as deterministic NDJSON: a
// header line, every simulation event (frame tx/rx, collision and fade
// drops, duplicate suppression, wake/sleep, energy meter transitions,
// node deaths), a per-node summary per run, and the aggregate result.
// See docs/OBSERVABILITY.md for the schema.
//
// The sweep subcommand is the long-run workhorse: per-point progress on
// stderr and, with -checkpoint, crash-safe resumability — every completed
// point is persisted and skipped on restart. With -distribute it becomes
// the coordinator of a multi-process sweep: `pbbf worker` processes lease
// point batches over HTTP, killed workers' leases are requeued, and the
// merged output is byte-identical to a local run (docs/DISTRIBUTED.md).
// The serve subcommand exposes the registry over HTTP: a sharded result
// cache, optionally tiered over a persistent on-disk result store
// (-store) so a restarted server serves warmed results without
// recomputing, Prometheus metrics on /metrics, and per-client rate
// limiting plus bounded-queue backpressure (429 + Retry-After). The
// loadtest subcommand drives a running server with a mixed hit/miss
// workload and gates its latency percentiles against a committed
// baseline (LOADTEST.json), mirroring the bench gate. See
// docs/SERVING.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"pbbf/internal/bench"
	"pbbf/internal/experiments"
	"pbbf/internal/protocol"
	"pbbf/internal/scenario"
	"pbbf/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pbbf:", err)
		os.Exit(1)
	}
}

// run is runCtx without cancellation or a progress stream — the entry
// point for the one-shot modes (and most tests).
func run(args []string, out io.Writer) error {
	return runCtx(context.Background(), args, out, io.Discard)
}

// runCtx dispatches the subcommands. out receives experiment output;
// errOut receives progress and operational logs. ctx cancellation stops
// serve and sweep gracefully.
func runCtx(ctx context.Context, args []string, out, errOut io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "bench":
			return runBench(args[1:], out)
		case "trace":
			return runTrace(args[1:], out)
		case "serve":
			return runServe(ctx, args[1:], out, errOut)
		case "sweep":
			return runSweep(ctx, args[1:], out, errOut)
		case "worker":
			return runWorker(ctx, args[1:], out, errOut)
		case "loadtest":
			return runLoadtest(ctx, args[1:], out, errOut)
		}
	}
	fs := flag.NewFlagSet("pbbf", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		experiment = fs.String("experiment", "", "scenario id (e.g. fig8) or \"all\"")
		scaleName  = fs.String("scale", "quick", "scenario scale: quick, paper, bench, or large")
		format     = fs.String("format", "table", "output format: table, csv, json, or ndjson")
		seed       = fs.Uint64("seed", 1, "root random seed")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the point sweep")
		protoName  = fs.String("protocol", "", "broadcast protocol for network scenarios: pbbf (default), sleepsched, or ola")
		energyJ    = fs.Float64("energy", 0, "mean initial battery capacity in joules for network scenarios (0 = infinite battery)")
		harvestW   = fs.Float64("harvest", 0, "constant per-node energy-harvest rate in watts (requires -energy)")
		list       = fs.Bool("list", false, "list available scenarios with their metadata and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := experiments.Registry()
	if *list {
		return printList(out, reg)
	}

	// Validate every flag before doing any work, so a bad value always
	// exits non-zero with a message instead of silently running defaults.
	scale, err := scenario.ByName(*scaleName)
	if err != nil {
		return err
	}
	scale.Seed = *seed
	if scale.Protocol, err = resolveProtocol(*protoName); err != nil {
		return err
	}
	scale.EnergyJ = *energyJ
	scale.HarvestW = *harvestW
	if err := scale.Validate(); err != nil {
		return err
	}

	if err := validFormat(*format); err != nil {
		return err
	}
	if *workers <= 0 {
		return fmt.Errorf("workers must be positive, got %d", *workers)
	}
	if *experiment == "" {
		return fmt.Errorf("missing -experiment (try -list)")
	}

	var selected []scenario.Scenario
	if *experiment == "all" {
		selected = reg.All()
	} else {
		sc, err := reg.ByID(*experiment)
		if err != nil {
			return err
		}
		selected = []scenario.Scenario{sc}
	}

	outputs, err := scenario.RunAll(selected, scale, *workers)
	if err != nil {
		return err
	}
	return emit(out, *format, outputs)
}

// runBench implements the bench subcommand: measure every registered
// scenario at the bench scale, write the report, and optionally gate
// against a baseline.
func runBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pbbf bench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		outPath   = fs.String("out", "BENCH.json", "path to write the benchmark report")
		scaleName = fs.String("scale", "bench", "scenario scale to benchmark at")
		seed      = fs.Uint64("seed", 1, "root random seed")
		workers   = fs.Int("workers", 1, "sweep worker-pool size (1 = scheduler-independent timings)")
		repeats   = fs.Int("repeats", bench.DefaultRepeats, "measurements per scenario; the fastest is recorded")
		baseline  = fs.String("baseline", "", "baseline report to compare against (empty = no gate)")
		threshold = fs.Float64("threshold", 0.30, "per-scenario ns/point and allocs/point regression tolerance vs the baseline")
		heapOut   = fs.String("heap-profile", "", "write a pprof heap profile here after the run (empty = none)")
		traceSink = fs.String("trace", "", "attach the event recorder to every run: \"discard\" records a fully-instrumented report for manual comparison (-overhead-gate is the CI gate); empty = untraced")
		overhead  = fs.Float64("overhead-gate", 0, "measure tracing overhead with interleaved untraced/traced pairs and fail any scenario whose traced arm is more than this fraction slower (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("bench: unexpected arguments %v", fs.Args())
	}
	scale, err := scenario.ByName(*scaleName)
	if err != nil {
		return err
	}
	scale.Seed = *seed
	if *workers <= 0 {
		return fmt.Errorf("workers must be positive, got %d", *workers)
	}
	if *repeats <= 0 {
		return fmt.Errorf("repeats must be positive, got %d", *repeats)
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold must be positive, got %v", *threshold)
	}
	if *overhead < 0 {
		return fmt.Errorf("overhead-gate must be non-negative, got %v", *overhead)
	}
	if *outPath == "" {
		return fmt.Errorf("missing -out path")
	}
	// Load the baseline before spending benchmark time, so a bad path
	// fails fast and never leaves a half-recorded report behind.
	var base *bench.Report
	if *baseline != "" {
		var err error
		if base, err = bench.ReadFile(*baseline); err != nil {
			return err
		}
	}

	var provider trace.Provider
	switch *traceSink {
	case "":
	case "discard":
		provider = trace.DiscardProvider
	default:
		return fmt.Errorf("bench: unknown -trace sink %q (want \"discard\" or empty)", *traceSink)
	}

	// Overhead-gate mode replaces the normal report: interleaved
	// untraced/traced pairs in this one process, gated on the ratio. Two
	// separate invocations can't gate tracing cost tightly — machine drift
	// between them exceeds any honest bound on the instrumentation itself.
	if *overhead > 0 {
		if *baseline != "" || *traceSink != "" {
			return fmt.Errorf("bench: -overhead-gate measures both arms itself; drop -baseline/-trace")
		}
		orep, err := bench.RunOverhead(experiments.Registry().All(), bench.Config{
			Scale:     scale,
			ScaleName: *scaleName,
			Workers:   *workers,
			Repeats:   *repeats,
			Progress:  out,
		})
		if err != nil {
			return err
		}
		// Only write a report where one was asked for: the default -out
		// names the BENCH.json schema, which this mode does not produce.
		explicitOut := false
		fs.Visit(func(f *flag.Flag) { explicitOut = explicitOut || f.Name == "out" })
		if explicitOut {
			if err := orep.WriteFile(*outPath); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s: %d scenarios\n", *outPath, len(orep.Results))
		}
		var over []bench.OverheadResult
		for _, r := range orep.Results {
			if r.Gated && r.Ratio > 1+*overhead {
				over = append(over, r)
			}
		}
		if len(over) == 0 {
			fmt.Fprintf(out, "tracing overhead within %.0f%% on every gated scenario\n", *overhead*100)
			return nil
		}
		for _, r := range over {
			fmt.Fprintf(out, "TRACE OVERHEAD %-12s %d -> %d ns/pt (%.2fx)\n",
				r.ID, r.UntracedNSPerPoint, r.TracedNSPerPoint, r.Ratio)
		}
		return fmt.Errorf("%d scenario(s) exceed the %.0f%% tracing-overhead gate", len(over), *overhead*100)
	}

	rep, err := bench.Run(experiments.Registry().All(), bench.Config{
		Scale:         scale,
		ScaleName:     *scaleName,
		Workers:       *workers,
		Repeats:       *repeats,
		Progress:      out,
		TraceProvider: provider,
	})
	if err != nil {
		return err
	}
	if err := rep.WriteFile(*outPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d scenarios in %.2fs\n",
		*outPath, len(rep.Scenarios), float64(rep.TotalWallNS)/1e9)
	if *heapOut != "" {
		if err := writeHeapProfile(*heapOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote heap profile %s\n", *heapOut)
	}

	// The absolute allocation ceiling needs no baseline, so it always runs:
	// the flagship scenarios must stay within the pooled kernel's budget on
	// every bench-scale invocation, not only when someone passes -baseline.
	if viols := bench.CheckCeilings(rep); len(viols) > 0 {
		for _, v := range viols {
			if v.Missing {
				fmt.Fprintf(out, "ALLOC CEILING %-12s missing from the run (ceiling %d allocs/pt)\n", v.ID, v.Ceiling)
				continue
			}
			fmt.Fprintf(out, "ALLOC CEILING %-12s %d allocs/pt exceeds the %d ceiling\n",
				v.ID, v.AllocsPerPoint, v.Ceiling)
		}
		return fmt.Errorf("%d scenario(s) over the %d allocs/point flagship ceiling", len(viols), bench.FlagshipAllocCeiling)
	}

	if base == nil {
		return nil
	}
	if base.CPU != rep.CPU || base.NumCPU != rep.NumCPU {
		fmt.Fprintf(out, "WARNING: hardware mismatch vs baseline (%q/%d cores vs %q/%d cores): "+
			"absolute times are not comparable; see docs/BENCHMARKS.md for the refresh procedure\n",
			base.CPU, base.NumCPU, rep.CPU, rep.NumCPU)
	}
	regs, err := bench.Compare(base, rep, *threshold)
	if err != nil {
		return err
	}
	if len(regs) == 0 {
		fmt.Fprintf(out, "no regressions beyond %.0f%% vs %s\n", *threshold*100, *baseline)
		return nil
	}
	for _, r := range regs {
		switch {
		case r.Ratio == 0:
			fmt.Fprintf(out, "REGRESSION %-12s missing from current run (baseline %d ns/pt)\n",
				r.ID, r.BaseNSPerPoint)
		case r.Metric == "allocs/point":
			fmt.Fprintf(out, "REGRESSION %-12s %d -> %d allocs/pt (%.2fx)\n",
				r.ID, r.BaseAllocsPerPoint, r.CurAllocsPerPoint, r.Ratio)
		default:
			fmt.Fprintf(out, "REGRESSION %-12s %d -> %d ns/pt (%.2fx)\n",
				r.ID, r.BaseNSPerPoint, r.CurNSPerPoint, r.Ratio)
		}
	}
	return fmt.Errorf("%d scenario(s) regressed more than %.0f%% vs %s",
		len(regs), *threshold*100, *baseline)
}

// writeHeapProfile dumps the post-run heap to path for pprof. The GC run
// first makes the profile reflect retained state (the warmed pools), not
// collectable garbage.
func writeHeapProfile(path string) error {
	runtime.GC()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("heap profile: %w", err)
	}
	return f.Close()
}

// resolveProtocol validates the -protocol flag and returns the canonical
// Scale.Protocol value: empty for the PBBF default (so every key and
// checkpoint identity stays on the pre-protocol spelling), the canonical
// name otherwise. Unknown names fail with the same did-you-mean style as
// scenario IDs.
func resolveProtocol(name string) (string, error) {
	if name == "" {
		return "", nil
	}
	sp, err := protocol.SpecFor(name)
	if err != nil {
		return "", err
	}
	return sp.Canonical(), nil
}

// printList renders the registry with its metadata: ID, paper artifact,
// title, the protocols it exercises, and the documented parameter space.
func printList(out io.Writer, reg *scenario.Registry) error {
	for _, sc := range reg.All() {
		if _, err := fmt.Fprintf(out, "%-12s %-10s %s\n", sc.ID, sc.Artifact, sc.Title); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(out, "%-12s   protocols: %s\n", "", strings.Join(sc.Protocols, ", ")); err != nil {
			return err
		}
		for _, p := range sc.Params {
			if _, err := fmt.Fprintf(out, "%-12s   %s: %s\n", "", p.Name, p.Desc); err != nil {
				return err
			}
		}
	}
	return nil
}

// validFormat checks the shared -format flag value.
func validFormat(format string) error {
	switch format {
	case "table", "csv", "json", "ndjson":
		return nil
	}
	return fmt.Errorf("unknown format %q (want table, csv, json, or ndjson)", format)
}

// emit renders the run outputs in the requested format.
func emit(out io.Writer, format string, outputs []scenario.Output) error {
	if format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(outputs)
	}
	if format == "ndjson" {
		return emitNDJSON(out, outputs)
	}
	for i, o := range outputs {
		if i > 0 {
			fmt.Fprintln(out)
		}
		switch format {
		case "table":
			fmt.Fprint(out, o.Table.Render())
		case "csv":
			fmt.Fprintf(out, "# %s\n", o.Table.Title)
			fmt.Fprint(out, o.Table.CSV())
		}
	}
	return nil
}

// ndjsonLine is one row of the ndjson output: a flat, per-point record in
// deterministic enumeration order — the byte-diffable stream format the
// nightly full-registry CI sweep archives and compares night over night.
// TableFn scenarios (static artifacts with no parameter points) emit one
// line carrying the whole table instead.
type ndjsonLine struct {
	Scenario string                `json:"scenario"`
	Artifact string                `json:"artifact"`
	Point    *scenario.PointOutput `json:"point,omitempty"`
	Table    any                   `json:"table,omitempty"`
}

// emitNDJSON writes one JSON line per parameter point (or per static
// table). Lines follow scenario registration order, then point enumeration
// order, so two runs of the same workload are byte-identical iff their
// results are.
func emitNDJSON(out io.Writer, outputs []scenario.Output) error {
	enc := json.NewEncoder(out)
	for _, o := range outputs {
		if len(o.Points) == 0 {
			if err := enc.Encode(ndjsonLine{
				Scenario: o.Scenario.ID,
				Artifact: o.Scenario.Artifact,
				Table:    o.Table,
			}); err != nil {
				return err
			}
			continue
		}
		for i := range o.Points {
			if err := enc.Encode(ndjsonLine{
				Scenario: o.Scenario.ID,
				Artifact: o.Scenario.Artifact,
				Point:    &o.Points[i],
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
