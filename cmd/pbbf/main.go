// Command pbbf regenerates the tables and figures of "Exploring the
// Energy-Latency Trade-off for Broadcasts in Energy-Saving Sensor
// Networks" (Miller, Sengul, Gupta; ICDCS 2005) from this repository's
// reimplementation.
//
// Usage:
//
//	pbbf -list
//	pbbf -experiment fig8
//	pbbf -experiment all -scale paper -format csv
//
// Scales: "quick" (CI-sized, seconds) and "paper" (the paper's
// dimensions, minutes). Output is an aligned text table or CSV.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pbbf/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pbbf:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pbbf", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		experiment = fs.String("experiment", "", "experiment id (e.g. fig8) or \"all\"")
		scaleName  = fs.String("scale", "quick", "experiment scale: quick or paper")
		format     = fs.String("format", "table", "output format: table or csv")
		seed       = fs.Uint64("seed", 1, "root random seed")
		list       = fs.Bool("list", false, "list available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (want quick or paper)", *scaleName)
	}
	scale.Seed = *seed

	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", *format)
	}
	if *experiment == "" {
		return fmt.Errorf("missing -experiment (try -list)")
	}

	var selected []experiments.Experiment
	if *experiment == "all" {
		selected = experiments.All()
	} else {
		e, err := experiments.ByID(*experiment)
		if err != nil {
			return err
		}
		selected = []experiments.Experiment{e}
	}

	for i, e := range selected {
		tbl, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		switch *format {
		case "table":
			fmt.Fprint(out, tbl.Render())
		case "csv":
			fmt.Fprintf(out, "# %s\n", tbl.Title)
			fmt.Fprint(out, tbl.CSV())
		}
	}
	return nil
}
