// Command pbbf regenerates the tables and figures of "Exploring the
// Energy-Latency Trade-off for Broadcasts in Energy-Saving Sensor
// Networks" (Miller, Sengul, Gupta; ICDCS 2005) — plus this repository's
// extension scenarios — from the unified scenario registry.
//
// Usage:
//
//	pbbf -list
//	pbbf -experiment fig8
//	pbbf -experiment all -scale paper -format csv
//	pbbf -experiment all -scale quick -format json
//
// Scales: "quick" (CI-sized, seconds) and "paper" (the paper's
// dimensions, minutes). With -experiment all, every parameter point of
// every scenario fans out across one bounded worker pool; output order is
// deterministic regardless of scheduling. Formats: an aligned text table,
// CSV, or JSON (scenario metadata, the assembled table, and per-point
// energy/latency/delivery results).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pbbf/internal/experiments"
	"pbbf/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pbbf:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pbbf", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		experiment = fs.String("experiment", "", "scenario id (e.g. fig8) or \"all\"")
		scaleName  = fs.String("scale", "quick", "scenario scale: quick or paper")
		format     = fs.String("format", "table", "output format: table, csv, or json")
		seed       = fs.Uint64("seed", 1, "root random seed")
		workers    = fs.Int("workers", 0, "worker pool size for the point sweep (0 = GOMAXPROCS)")
		list       = fs.Bool("list", false, "list available scenarios with their metadata and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := experiments.Registry()
	if *list {
		return printList(out, reg)
	}

	scale, err := scenario.ByName(*scaleName)
	if err != nil {
		return err
	}
	scale.Seed = *seed

	switch *format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want table, csv, or json)", *format)
	}
	if *experiment == "" {
		return fmt.Errorf("missing -experiment (try -list)")
	}

	var selected []scenario.Scenario
	if *experiment == "all" {
		selected = reg.All()
	} else {
		sc, err := reg.ByID(*experiment)
		if err != nil {
			return err
		}
		selected = []scenario.Scenario{sc}
	}

	outputs, err := scenario.RunAll(selected, scale, *workers)
	if err != nil {
		return err
	}
	return emit(out, *format, outputs)
}

// printList renders the registry with its metadata: ID, paper artifact,
// title, and the documented parameter space.
func printList(out io.Writer, reg *scenario.Registry) error {
	for _, sc := range reg.All() {
		if _, err := fmt.Fprintf(out, "%-12s %-10s %s\n", sc.ID, sc.Artifact, sc.Title); err != nil {
			return err
		}
		for _, p := range sc.Params {
			if _, err := fmt.Fprintf(out, "%-12s   %s: %s\n", "", p.Name, p.Desc); err != nil {
				return err
			}
		}
	}
	return nil
}

// emit renders the run outputs in the requested format.
func emit(out io.Writer, format string, outputs []scenario.Output) error {
	if format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(outputs)
	}
	for i, o := range outputs {
		if i > 0 {
			fmt.Fprintln(out)
		}
		switch format {
		case "table":
			fmt.Fprint(out, o.Table.Render())
		case "csv":
			fmt.Fprintf(out, "# %s\n", o.Table.Title)
			fmt.Fprint(out, o.Table.CSV())
		}
	}
	return nil
}
