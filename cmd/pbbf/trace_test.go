package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// traceLine is one parsed line of a trace NDJSON stream — the union of the
// header/event/node/result schemas, discriminated by Type.
type traceLine struct {
	Type   string  `json:"type"`
	Run    int     `json:"run"`
	TNS    int64   `json:"t_ns"`
	Kind   string  `json:"kind"`
	Node   int32   `json:"node"`
	Peer   *int32  `json:"peer"`
	Origin int32   `json:"origin"`
	Seq    uint32  `json:"seq"`
	Value  float64 `json:"value"`
	Cause  string  `json:"cause"`

	// result-line fields
	Delivery      float64 `json:"delivery"`
	EventsEmitted int     `json:"events_emitted"`
}

// TestTraceGoldens pins one traced extcompare point per broadcast protocol
// (PBBF, sleepsched, OLA) to its committed golden, byte for byte, and then
// model-checks the stream: every decoded reception must pair with a
// transmission by its peer that started strictly earlier and whose tx_end
// lands at exactly the reception's timestamp, while the receiver's radio
// is awake. A trace that diffs the golden means the simulation physics
// moved; a trace that fails the invariant means the recorder itself is
// lying about what the simulator did.
//
// Regenerate after an intentional physics change with:
//
//	go run ./cmd/pbbf trace -scenario extcompare -point <1|4|8> -runs 1 \
//	    -events packet,radio > cmd/pbbf/testdata/trace_extcompare_<proto>.ndjson
func TestTraceGoldens(t *testing.T) {
	cases := []struct {
		proto  string
		point  string
		golden string
	}{
		{"pbbf", "1", "testdata/trace_extcompare_pbbf.ndjson"},
		{"sleepsched", "4", "testdata/trace_extcompare_sleepsched.ndjson"},
		{"ola", "8", "testdata/trace_extcompare_ola.ndjson"},
	}
	for _, tc := range cases {
		t.Run(tc.proto, func(t *testing.T) {
			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			args := []string{"trace", "-scenario", "extcompare", "-point", tc.point,
				"-runs", "1", "-events", "packet,radio"}
			if err := run(args, &buf); err != nil {
				t.Fatal(err)
			}
			got := buf.Bytes()
			if !bytes.Equal(got, want) {
				t.Fatalf("trace stream diverged from %s: %s", tc.golden, firstDiff(got, want))
			}
			checkTraceInvariants(t, got)
		})
	}
}

// TestTraceWorkerIndependence proves the trace stream is byte-identical
// regardless of -workers: a single point always computes serially, so the
// flag cannot change scheduling, and the stream it emits is the same
// bytes either way.
func TestTraceWorkerIndependence(t *testing.T) {
	runTraceArgs := func(workers string) []byte {
		t.Helper()
		var buf bytes.Buffer
		args := []string{"trace", "-scenario", "extcompare", "-point", "1",
			"-runs", "1", "-events", "packet,radio", "-workers", workers}
		if err := run(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := runTraceArgs("1")
	eight := runTraceArgs("8")
	if !bytes.Equal(one, eight) {
		t.Fatalf("trace stream depends on -workers: %s", firstDiff(eight, one))
	}
}

// parseTrace splits a trace stream into typed lines.
func parseTrace(t *testing.T, stream []byte) []traceLine {
	t.Helper()
	var out []traceLine
	sc := bufio.NewScanner(bytes.NewReader(stream))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line traceLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// checkTraceInvariants model-checks one trace stream: structural framing
// (header first, result last, a non-empty event stream in between) and the
// reception-pairing physics described on TestTraceGoldens.
func checkTraceInvariants(t *testing.T, stream []byte) {
	t.Helper()
	lines := parseTrace(t, stream)
	if len(lines) < 3 {
		t.Fatalf("trace stream has only %d lines", len(lines))
	}
	if lines[0].Type != "header" {
		t.Fatalf("stream starts with %q, want header", lines[0].Type)
	}
	last := lines[len(lines)-1]
	if last.Type != "result" {
		t.Fatalf("stream ends with %q, want result", last.Type)
	}

	var events []traceLine
	for _, l := range lines {
		if l.Type == "event" {
			events = append(events, l)
		}
	}
	if len(events) == 0 {
		t.Fatal("trace stream carries no events")
	}
	if last.EventsEmitted != len(events) {
		t.Fatalf("result claims %d emitted events, stream has %d", last.EventsEmitted, len(events))
	}

	// Pass 1: index transmissions. txEnds holds (sender, t) of every frame
	// leaving the air; txStarts holds each sender's transmission start
	// times by kind.
	type at struct {
		node int32
		t    int64
	}
	txEnds := make(map[at]bool)
	txStarts := make(map[int32][]traceLine)
	for _, ev := range events {
		switch ev.Kind {
		case "tx_end":
			txEnds[at{ev.Node, ev.TNS}] = true
		case "tx_data", "tx_atim":
			txStarts[ev.Node] = append(txStarts[ev.Node], ev)
		}
	}

	// Pass 2: walk the stream in simulation order, tracking each radio's
	// awake state (every node starts awake) and deaths, and check each
	// decoded reception against its peer's transmissions. Death is fail-stop:
	// a dead node may finish one frame it had already committed to the air
	// (the trailing tx_end of a mid-transmission death) but must never start
	// a transmission, decode, deliver, or wake again.
	awake := make(map[int32]bool)
	isAwake := func(n int32) bool {
		a, seen := awake[n]
		return !seen || a
	}
	dead := make(map[int32]bool)
	committedTx := make(map[int32]bool) // dead with a frame still on the air
	rxChecked := 0
	for _, ev := range events {
		if dead[ev.Node] {
			switch ev.Kind {
			case "tx_end":
				if !committedTx[ev.Node] {
					t.Fatalf("dead node %d emits tx_end at t=%d with no committed frame", ev.Node, ev.TNS)
				}
				committedTx[ev.Node] = false
			case "tx_data", "tx_atim", "rx_data", "rx_atim", "duplicate", "deliver", "wake":
				t.Fatalf("dead node %d still active: %s at t=%d", ev.Node, ev.Kind, ev.TNS)
			}
		}
		switch ev.Kind {
		case "death":
			if dead[ev.Node] {
				t.Fatalf("node %d died twice (t=%d)", ev.Node, ev.TNS)
			}
			if ev.Cause != "" && ev.Cause != "depleted" {
				t.Fatalf("death of node %d carries unknown cause %q", ev.Node, ev.Cause)
			}
			dead[ev.Node] = true
			// A frame started but not yet ended at death time may complete.
			starts, ends := 0, 0
			for _, tx := range txStarts[ev.Node] {
				if tx.TNS <= ev.TNS {
					starts++
				}
			}
			for end := range txEnds {
				if end.node == ev.Node && end.t <= ev.TNS {
					ends++
				}
			}
			committedTx[ev.Node] = starts > ends
		case "wake":
			awake[ev.Node] = true
		case "sleep":
			awake[ev.Node] = false
		case "rx_data", "rx_atim", "duplicate":
			if ev.Peer == nil {
				t.Fatalf("reception without a peer: %+v", ev)
			}
			peer := *ev.Peer
			if !txEnds[at{peer, ev.TNS}] {
				t.Fatalf("%s at node %d t=%d: peer %d has no tx_end at that instant",
					ev.Kind, ev.Node, ev.TNS, peer)
			}
			wantKind := "tx_data"
			if ev.Kind == "rx_atim" {
				wantKind = "tx_atim"
			}
			started := false
			for _, tx := range txStarts[peer] {
				if tx.Kind == wantKind && tx.TNS < ev.TNS {
					started = true
					break
				}
			}
			if !started {
				t.Fatalf("%s at node %d t=%d: peer %d never started a %s before it",
					ev.Kind, ev.Node, ev.TNS, peer, wantKind)
			}
			if !isAwake(ev.Node) {
				t.Fatalf("%s at node %d t=%d: receiver's radio is asleep", ev.Kind, ev.Node, ev.TNS)
			}
			rxChecked++
		}
	}
	if rxChecked == 0 {
		t.Fatal("trace stream has no receptions to check")
	}
}

// TestTraceLifetimeDepletion traces one finite-battery extlifetime point
// end to end and proves the acceptance property in the stream itself:
// batteries run dry, every death carries the depleted cause, and — via
// checkTraceInvariants' death tracking — no depleted node transmits,
// decodes, delivers, or wakes afterwards.
func TestTraceLifetimeDepletion(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"trace", "-scenario", "extlifetime", "-point", "0",
		"-runs", "1", "-events", "packet,radio"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	checkTraceInvariants(t, stream)
	deaths := 0
	for _, l := range parseTrace(t, stream) {
		if l.Type != "event" || l.Kind != "death" {
			continue
		}
		if l.Cause != "depleted" {
			t.Fatalf("extlifetime death of node %d carries cause %q, want depleted", l.Node, l.Cause)
		}
		deaths++
	}
	if deaths == 0 {
		t.Fatal("no depletion deaths in a 0.5 J extlifetime trace")
	}
}

// TestTraceErrors covers the trace subcommand's validation surface.
func TestTraceErrors(t *testing.T) {
	cases := [][]string{
		{"trace"},                        // missing -scenario
		{"trace", "-scenario", "nope"},   // unknown scenario
		{"trace", "-scenario", "table1"}, // static table, nothing to trace
		{"trace", "-scenario", "extcompare", "-point", "99"},     // out of range
		{"trace", "-scenario", "extcompare", "-events", "bogus"}, // bad group
		{"trace", "-scenario", "fig4", "-point", "0"},            // ideal-sim scenario: no events
		{"trace", "-scenario", "extcompare", "-scale", "nope"},   // bad scale
		{"trace", "-scenario", "extcompare", "-workers", "0"},    // bad workers
		{"trace", "-scenario", "extcompare", "extra-arg"},        // positional junk
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestTraceListPoints spot-checks the -list-points enumeration against the
// extcompare layout (12 points: PBBF 0-3, sleepsched 4-7, OLA 8-11).
func TestTraceListPoints(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"trace", "-scenario", "extcompare", "-list-points"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 12 {
		t.Fatalf("extcompare lists %d points, want 12:\n%s", len(lines), buf.String())
	}
	if want := fmt.Sprintf("extcompare[%d]", 8); !bytes.Contains(lines[8], []byte(want)) {
		t.Fatalf("line 8 missing index tag %q: %s", want, lines[8])
	}
	if !bytes.Contains(lines[8], []byte("OLA")) {
		t.Fatalf("point 8 should open the OLA series: %s", lines[8])
	}
}
