// Package pbbf's root benchmark harness: one testing.B benchmark per table
// and figure of the paper, each regenerating the artifact's data at
// QuickScale (reduced dimensions, same shapes), plus ablation benchmarks
// for the repository's design choices. Run with:
//
//	go test -bench=. -benchmem
//
// For paper-scale data use the CLI: pbbf -experiment all -scale paper.
package pbbf

import (
	"testing"
	"time"

	"pbbf/internal/core"
	"pbbf/internal/experiments"
	"pbbf/internal/idealsim"
	"pbbf/internal/mac"
	"pbbf/internal/netsim"
	"pbbf/internal/rng"
	"pbbf/internal/scenario"
	"pbbf/internal/stats"
	"pbbf/internal/topo"
)

// benchScale trims QuickScale further so each bench iteration is one
// comparable unit of work.
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.NetRuns = 1
	s.NetDuration = 200 * time.Second
	s.IdealUpdates = 2
	s.PercTrials = 20
	return s
}

func benchExperiment(b *testing.B, run func(experiments.Scale) (*stats.Table, error)) {
	b.Helper()
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Seed = uint64(i + 1)
		tbl, err := run(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Series) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1Params(b *testing.B)         { benchExperiment(b, experiments.Table1) }
func BenchmarkTable2Params(b *testing.B)         { benchExperiment(b, experiments.Table2) }
func BenchmarkFig4Threshold90(b *testing.B)      { benchExperiment(b, experiments.Fig4) }
func BenchmarkFig5Threshold99(b *testing.B)      { benchExperiment(b, experiments.Fig5) }
func BenchmarkFig6CriticalBond(b *testing.B)     { benchExperiment(b, experiments.Fig6) }
func BenchmarkFig7PQFrontier(b *testing.B)       { benchExperiment(b, experiments.Fig7) }
func BenchmarkFig8Energy(b *testing.B)           { benchExperiment(b, experiments.Fig8) }
func BenchmarkFig9HopStretchNear(b *testing.B)   { benchExperiment(b, experiments.Fig9) }
func BenchmarkFig10HopStretchFar(b *testing.B)   { benchExperiment(b, experiments.Fig10) }
func BenchmarkFig11PerHopLatency(b *testing.B)   { benchExperiment(b, experiments.Fig11) }
func BenchmarkFig12Tradeoff(b *testing.B)        { benchExperiment(b, experiments.Fig12) }
func BenchmarkFig13EnergyNS(b *testing.B)        { benchExperiment(b, experiments.Fig13) }
func BenchmarkFig14Latency2Hop(b *testing.B)     { benchExperiment(b, experiments.Fig14) }
func BenchmarkFig15Latency5Hop(b *testing.B)     { benchExperiment(b, experiments.Fig15) }
func BenchmarkFig16UpdatesReceived(b *testing.B) { benchExperiment(b, experiments.Fig16) }
func BenchmarkFig17LatencyDensity(b *testing.B)  { benchExperiment(b, experiments.Fig17) }
func BenchmarkFig18ReceivedDensity(b *testing.B) { benchExperiment(b, experiments.Fig18) }
func BenchmarkExtGossip(b *testing.B)            { benchExperiment(b, experiments.ExtGossip) }
func BenchmarkExtKBatching(b *testing.B)         { benchExperiment(b, experiments.ExtK) }
func BenchmarkExtAdaptive(b *testing.B)          { benchExperiment(b, experiments.ExtAdaptive) }
func BenchmarkExtLossInjection(b *testing.B)     { benchExperiment(b, experiments.ExtLoss) }
func BenchmarkExtWakeupDutyCycle(b *testing.B)   { benchExperiment(b, experiments.ExtWakeup) }

// BenchmarkRegistryAllFlattened runs the entire scenario registry through
// the flattened parallel sweep — the `pbbf -experiment all` hot path.
func BenchmarkRegistryAllFlattened(b *testing.B) {
	s := benchScale()
	scenarios := experiments.Registry().All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Seed = uint64(i + 1)
		outs, err := scenario.RunAll(scenarios, s, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != len(scenarios) {
			b.Fatalf("got %d outputs", len(outs))
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationQCoinModel compares the per-(node, frame) stay-awake
// coin (the protocol's semantics, used by idealsim) against the
// independent-per-reception coin the bond-percolation analysis assumes.
// The benchmark reports both models' coverage as custom metrics so runs
// can confirm the analysis approximation holds.
func BenchmarkAblationQCoinModel(b *testing.B) {
	g := topo.MustGrid(30, 30)
	params := core.Params{P: 0.5, Q: 0.5}
	var frameCoin, indep float64
	for i := 0; i < b.N; i++ {
		cfg := idealsim.Defaults(g, g.Center())
		cfg.Params = params
		cfg.Updates = 2
		cfg.Seed = uint64(i + 1)
		res, err := idealsim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		frameCoin += res.MeanCoverage()

		// Independent-coin model: a direct bond-percolation realization
		// with pedge = 1 − p(1 − q).
		indep += independentCoinCoverage(g, core.EdgeProbability(params.P, params.Q), uint64(i+1))
	}
	b.ReportMetric(frameCoin/float64(b.N), "coverage-framecoin")
	b.ReportMetric(indep/float64(b.N), "coverage-independent")
}

// independentCoinCoverage floods the grid opening each directed edge
// independently with probability pedge and returns the covered fraction.
func independentCoinCoverage(g *topo.Grid, pedge float64, seed uint64) float64 {
	r := rng.New(seed)
	reached := make([]bool, g.N())
	src := g.Center()
	reached[src] = true
	queue := []topo.NodeID{src}
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur) {
			if !reached[nb] && r.Bool(pedge) {
				reached[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	return float64(count) / float64(g.N())
}

// BenchmarkAblationEventVsTimeStepped compares the event-driven ideal
// simulator against a naive fixed-timestep variant of the same model,
// quantifying the design choice to build on a discrete-event kernel.
func BenchmarkAblationEventVsTimeStepped(b *testing.B) {
	g := topo.MustGrid(30, 30)
	b.Run("event-driven", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := idealsim.Defaults(g, g.Center())
			cfg.Params = core.PSM()
			cfg.Updates = 1
			cfg.Seed = uint64(i + 1)
			if _, err := idealsim.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("time-stepped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			timeSteppedPSMFlood(g, 100*time.Millisecond)
		}
	})
}

// timeSteppedPSMFlood is the strawman: advance a clock in fixed ticks and
// diffuse one PSM broadcast one beacon interval per hop.
func timeSteppedPSMFlood(g *topo.Grid, tick time.Duration) int {
	const frame = 10 * time.Second
	horizon := 100 * frame
	received := make([]bool, g.N())
	pending := make([]bool, g.N())
	received[g.Center()] = true
	pending[g.Center()] = true
	steps := 0
	for now := time.Duration(0); now < horizon; now += tick {
		steps++
		if now%frame != 0 {
			continue
		}
		next := make([]bool, g.N())
		for id := range pending {
			if !pending[id] {
				continue
			}
			for _, nb := range g.Neighbors(topo.NodeID(id)) {
				if !received[nb] {
					received[nb] = true
					next[nb] = true
				}
			}
		}
		pending = next
	}
	return steps
}

// --- Hot-path micro benchmarks -------------------------------------------

// BenchmarkNetsimRun measures one fine-grained Section 5 run in the
// large-n, long-horizon regime the pooled event kernel targets: 100 nodes,
// 2000 simulated seconds, one topology built once outside the loop so the
// numbers isolate the kernel + MAC + PHY hot path.
func BenchmarkNetsimRun(b *testing.B) {
	const n = 100
	field, err := topo.NewConnectedRandomDisk(
		topo.DiskConfig{N: n, Range: 30, Area: topo.AreaForDensity(n, 30, 10)},
		rng.New(42), 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := netsim.Run(netsim.Config{
			Topo:      field,
			Source:    0,
			MAC:       mac.DefaultConfig(core.Params{P: 0.25, Q: 0.25}),
			Lambda:    0.01,
			Duration:  2000 * time.Second,
			K:         1,
			TrackHops: []int{2, 5},
			Seed:      uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.UpdatesGenerated == 0 {
			b.Fatal("no updates generated")
		}
	}
}

func BenchmarkIdealSimGrid75(b *testing.B) {
	g := topo.MustGrid(75, 75)
	for i := 0; i < b.N; i++ {
		cfg := idealsim.Defaults(g, g.Center())
		cfg.Params = core.Params{P: 0.5, Q: 0.5}
		cfg.Updates = 1
		cfg.Seed = uint64(i + 1)
		if _, err := idealsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
